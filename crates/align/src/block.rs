//! 8×8 cell-block computation — the "smallest unit for workload
//! distribution" (§2.2) shared by every GPU-style engine.
//!
//! A block covers reference positions `[i0, i0+8)` × query positions
//! `[j0, j0+8)`. Its inputs are the *west* boundary (`H`/`E` at
//! `(i0-1, j0+k)`), the *north* boundary (`H`/`F` at `(i0+k, j0-1)`), and
//! the corner `H(i0-1, j0-1)`; it produces the corresponding east/south
//! boundaries in place. Out-of-band and out-of-table cells are computed
//! (a real GPU block always executes all 64 cells) but **masked** to
//! `-∞` before they feed neighbours or the [`DiagTracker`], which is what
//! keeps tiled execution bit-identical to the scalar banded reference.

use crate::diag::DiagTracker;
use crate::pack::PackedSeq;
use crate::scoring::Scoring;
use crate::{BLOCK, NEG_INF};

/// Geometry and scoring context shared by all blocks of one task.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx<'a> {
    /// Reference length.
    pub n: i64,
    /// Query length.
    pub m: i64,
    /// Band half-width (large value = unbanded).
    pub w: i64,
    /// Scoring parameters.
    pub scoring: &'a Scoring,
}

impl<'a> BlockCtx<'a> {
    /// Build from task dimensions and scoring.
    pub fn new(n: usize, m: usize, scoring: &'a Scoring) -> BlockCtx<'a> {
        let (ni, mi) = (n as i64, m as i64);
        BlockCtx {
            n: ni,
            m: mi,
            w: if scoring.banded() { scoring.band_width as i64 } else { ni + mi },
            scoring,
        }
    }

    /// Whether cell `(i, j)` exists (inside table and band).
    #[inline(always)]
    pub fn valid(&self, i: i64, j: i64) -> bool {
        i < self.n && j < self.m && (i - j).abs() <= self.w
    }

    /// Number of reference blocks.
    #[inline]
    pub fn ref_blocks(&self) -> i64 {
        (self.n + BLOCK as i64 - 1) / BLOCK as i64
    }

    /// Number of query blocks.
    #[inline]
    pub fn query_blocks(&self) -> i64 {
        (self.m + BLOCK as i64 - 1) / BLOCK as i64
    }

    /// Inclusive range of reference-block columns a query-block row `bj`
    /// must compute so that every in-band cell of its rows is covered.
    pub fn row_block_range(&self, bj: i64) -> Option<(i64, i64)> {
        let b = BLOCK as i64;
        let j_lo = bj * b;
        let j_hi = (j_lo + b - 1).min(self.m - 1);
        if j_lo >= self.m {
            return None;
        }
        let i_lo = (j_lo - self.w).max(0);
        let i_hi = (j_hi + self.w).min(self.n - 1);
        if i_lo > i_hi {
            return None;
        }
        Some((i_lo / b, i_hi / b))
    }
}

/// One boundary pair (`H` plus the direction-specific gap score) spanning
/// `BLOCK` cells.
pub type Boundary = [i32; BLOCK];

/// Compute one block.
///
/// * `rcodes`/`qcodes`: base codes for the block's reference/query spans
///   (N-padded past the sequence end, as [`PackedSeq::unpack_block`] yields).
/// * `corner`: `H(i0-1, j0-1)` (already masked/bordered by the caller).
/// * `west_h`/`west_e`: in `H/E(i0-1, j0+k)`; out `H/E(i0+BLOCK-1, j0+k)`.
/// * `north_h`/`north_f`: in `H/F(i0+k, j0-1)`; out `H/F(i0+k, j0+BLOCK-1)`.
/// * Every computed in-band cell is reported to `tracker`.
#[allow(clippy::too_many_arguments)]
pub fn compute_block(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; BLOCK],
    qcodes: &[u8; BLOCK],
    corner: i32,
    west_h: &mut Boundary,
    west_e: &mut Boundary,
    north_h: &mut Boundary,
    north_f: &mut Boundary,
    tracker: &mut DiagTracker,
) {
    let sc = ctx.scoring;
    let oe = sc.gap_open + sc.gap_extend;
    let ext = sc.gap_extend;
    let mut carry = corner; // H(i-1, j0-1) for the current column i

    for l in 0..BLOCK {
        let i = i0 + l as i64;
        let mut diag = carry; // H(i-1, j-1) as j advances
        let mut left_h = north_h[l]; // H(i, j-1)
        let mut left_f = north_f[l]; // F(i, j-1)
        for k in 0..BLOCK {
            let j = j0 + k as i64;
            let up_h = west_h[k];
            let up_e = west_e[k];

            let e = (up_h - oe).max(up_e - ext);
            let f = (left_h - oe).max(left_f - ext);
            let sub = sc.substitution(rcodes[l], qcodes[k]);
            let mut h = e.max(f).max(diag.saturating_add(sub));

            let (mut ev, mut fv) = (e, f);
            if ctx.valid(i, j) {
                tracker.on_cell(i as i32, j as i32, h);
            } else {
                // Masked: out-of-band / out-of-table cells must read as -∞
                // to every neighbour, exactly like the scalar reference.
                h = NEG_INF;
                ev = NEG_INF;
                fv = NEG_INF;
            }

            diag = up_h;
            west_h[k] = h;
            west_e[k] = ev;
            left_h = h;
            left_f = fv;
        }
        // Corner for the next column is the *input* north value of this one.
        carry = north_h[l];
        north_h[l] = left_h;
        north_f[l] = left_f;
    }
}

/// Prepare the west boundary for the first block of a row sweep starting at
/// reference position `i_start` (block-aligned): true borders when the sweep
/// starts at the table edge, `-∞` when it starts mid-table at the band edge.
pub fn west_init(ctx: &BlockCtx<'_>, i_start: i64, j0: i64) -> (Boundary, Boundary) {
    let mut h = [NEG_INF; BLOCK];
    let e = [NEG_INF; BLOCK];
    if i_start == 0 {
        for (k, slot) in h.iter_mut().enumerate() {
            *slot = ctx.scoring.border((j0 + k as i64) as i32);
        }
    }
    (h, e)
}

/// Masked north-boundary read: `H/F(i, j0-1)` for a block starting at
/// reference `i0`. When `j0 == 0` this is the DP border; otherwise it is the
/// stored row boundary masked by band membership.
pub fn north_read(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    row_h: &[i32],
    row_f: &[i32],
) -> (Boundary, Boundary) {
    let mut h = [NEG_INF; BLOCK];
    let mut f = [NEG_INF; BLOCK];
    for l in 0..BLOCK {
        let i = i0 + l as i64;
        if j0 == 0 {
            h[l] = ctx.scoring.border(i as i32);
        } else if (i - (j0 - 1)).abs() <= ctx.w && i < ctx.n {
            h[l] = row_h[i as usize];
            f[l] = row_f[i as usize];
        }
    }
    (h, f)
}

/// Masked corner read: `H(i0-1, j0-1)`.
pub fn corner_read(ctx: &BlockCtx<'_>, i0: i64, j0: i64, row_h: &[i32]) -> i32 {
    if i0 == 0 && j0 == 0 {
        0
    } else if i0 == 0 {
        ctx.scoring.border((j0 - 1) as i32)
    } else if j0 == 0 {
        ctx.scoring.border((i0 - 1) as i32)
    } else if ((i0 - 1) - (j0 - 1)).abs() <= ctx.w {
        row_h[(i0 - 1) as usize]
    } else {
        NEG_INF
    }
}

/// Reference block-grid driver: computes the whole banded table block by
/// block (query-block rows top-down, each sweeping its reference range) and
/// returns the exact guided result.
///
/// This is the skeleton every GPU engine elaborates (with different tiling,
/// checkpointing and cost accounting); it doubles as the validation target
/// proving the block DP matches the scalar reference.
pub fn block_grid_align(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> crate::result::GuidedResult {
    let ctx = BlockCtx::new(reference.len(), query.len(), scoring);
    let mut tracker = DiagTracker::new(reference.len(), query.len(), scoring);
    if reference.is_empty() || query.is_empty() {
        return tracker.result();
    }
    let b = BLOCK as i64;
    let padded_n = (ctx.ref_blocks() * b) as usize;
    let mut row_h = vec![NEG_INF; padded_n];
    let mut row_f = vec![NEG_INF; padded_n];

    let mut rblock = [0u8; BLOCK];
    let mut qblock = [0u8; BLOCK];

    'rows: for bj in 0..ctx.query_blocks() {
        let j0 = bj * b;
        let Some((bi_lo, bi_hi)) = ctx.row_block_range(bj) else { continue };
        query.unpack_block(j0 as usize, &mut qblock);
        let i_start = bi_lo * b;
        let (mut west_h, mut west_e) = west_init(&ctx, i_start, j0);
        let mut corner = corner_read(&ctx, i_start, j0, &row_h);
        for bi in bi_lo..=bi_hi {
            let i0 = bi * b;
            reference.unpack_block(i0 as usize, &mut rblock);
            let (mut north_h, mut north_f) = north_read(&ctx, i0, j0, &row_h, &row_f);
            // Corner for the *next* block in this sweep, read before overwrite.
            let next_corner = north_h[BLOCK - 1];
            compute_block(
                &ctx,
                i0,
                j0,
                &rblock,
                &qblock,
                corner,
                &mut west_h,
                &mut west_e,
                &mut north_h,
                &mut north_f,
                &mut tracker,
            );
            row_h[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&north_h);
            row_f[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&north_f);
            corner = next_corner;
            if tracker.is_finished() {
                break 'rows;
            }
        }
        if tracker.advance().is_some() {
            break;
        }
    }
    tracker.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn check(r: &str, q: &str, scoring: &Scoring) {
        let (r, q) = (seq(r), seq(q));
        let want = guided_align(&r, &q, scoring);
        let got = block_grid_align(&r, &q, scoring);
        assert!(got.same_alignment(&want), "\nblock: {got:?}\nscalar: {want:?}");
        assert_eq!(got.cells, want.cells, "reference cell counts must agree");
        assert_eq!(got.antidiags, want.antidiags);
    }

    #[test]
    fn matches_scalar_small_square() {
        let s = Scoring::figure1();
        check("AGATAGAT", "AGACTATC", &s);
    }

    #[test]
    fn matches_scalar_non_block_multiple() {
        let s = Scoring::figure1();
        check("AGATAGATA", "AGACTATCAGA", &s);
        check("AGA", "AGACT", &s);
        check("ACGTACGTACGTACGTA", "ACG", &s);
    }

    #[test]
    fn matches_scalar_banded() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 3);
        check("ACGTACGTACGTACGTACGTACGT", "ACGTACGTTCGTACGTACGAACGT", &s);
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 5);
        check("ACGTACGTACGTACGTACGTACGTACGTACGTACGT", "ACGTACGTACGTACG", &s);
    }

    #[test]
    fn matches_scalar_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 8, 6);
        check(
            "ACGTACGTACGTACGTGGGGGGGGGGGGGGGGGGGGGGGG",
            "ACGTACGTACGTACGTCCCCCCCCCCCCCCCCCCCCCCCC",
            &s,
        );
    }

    #[test]
    fn matches_scalar_band_exhaustion() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        check(&"ACGT".repeat(16), "ACGTA", &s);
    }

    #[test]
    fn matches_scalar_long_random_like() {
        // Deterministic pseudo-random-ish strings exercising many blocks.
        let mut r = String::new();
        let mut q = String::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for k in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            if k % 37 != 0 {
                q.push(c);
            }
            if k % 23 == 0 {
                q.push('T');
            }
        }
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        check(&r, &q, &s);
        let s = Scoring::preset_bwa().with_band(24);
        check(&r, &q, &s);
    }

    #[test]
    fn row_block_range_geometry() {
        let sc = Scoring::new(1, 1, 1, 1, Scoring::NO_ZDROP, 4);
        let ctx = BlockCtx::new(64, 32, &sc);
        // row 0: j in [0,7], band w=4 → i in [0, 11] → blocks 0..=1
        assert_eq!(ctx.row_block_range(0), Some((0, 1)));
        // row 3: j in [24,31] → i in [20, 35] → blocks 2..=4
        assert_eq!(ctx.row_block_range(3), Some((2, 4)));
        // beyond query
        assert_eq!(ctx.row_block_range(4), None);
    }
}
