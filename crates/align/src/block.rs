//! `B×B` cell-block computation — the "smallest unit for workload
//! distribution" (§2.2) shared by every GPU-style engine.
//!
//! The paper fixes the block at 8×8 (one packed 32-bit word of literals per
//! block edge). This module keeps that as the *default* geometry
//! ([`crate::BLOCK`]) but parameterizes the whole layer over the block side
//! `B ∈ {8, 16}` so wider SIMD tiers have lanes to fill: the 16-wide
//! geometry ([`crate::MAX_BLOCK`]) runs the i16 wavefront with all 16 AVX2
//! lanes occupied per block anti-diagonal instead of 8. Geometry is chosen
//! per task by [`BlockCtx::geometry_for`] (or forced via
//! `AgathaConfig::with_block_dim` / `AGATHA_BLOCK` / `--block`), and every
//! (geometry × precision) combination is bit-identical to the scalar
//! reference — geometry only changes tiling, never scores.
//!
//! A block covers reference positions `[i0, i0+B)` × query positions
//! `[j0, j0+B)`. Its inputs are the *west* boundary (`H`/`E` at
//! `(i0-1, j0+k)`), the *north* boundary (`H`/`F` at `(i0+k, j0-1)`), and
//! the corner `H(i0-1, j0-1)`; it produces the corresponding east/south
//! boundaries in place. Out-of-band and out-of-table cells are computed
//! (a real GPU block always executes all `B²` cells) but **masked** to
//! `-∞` before they feed neighbours or the [`DiagTracker`], which is what
//! keeps tiled execution bit-identical to the scalar banded reference.
//!
//! ## Staged tracker updates
//!
//! Instead of a per-cell callback into the tracker (which serialises the
//! inner loop), [`compute_block`] writes its masked `H` values into a
//! [`BlockCellsT`] staging buffer — anti-diagonal-major, one validity
//! bitmask per block diagonal — and the caller folds the whole block with
//! one [`DiagTracker::on_block`] call. With the callback gone the fill
//! itself is free to vectorise: [`FillMode::Simd`] runs the wavefront
//! kernel in [`crate::simd`] (AVX2 on x86-64, a portable wavefront
//! elsewhere), bit-identical to [`FillMode::Scalar`] by construction.
//!
//! [`DiagTracker`]: crate::diag::DiagTracker
//! [`DiagTracker::on_block`]: crate::diag::DiagTracker::on_block

use crate::pack::PackedSeq;
use crate::scoring::Scoring;
use crate::{BLOCK, MAX_BLOCK, MAX_BLOCK_DIAGS, NEG_INF};

/// Number of anti-diagonals crossing one block of the default (`8×8`)
/// geometry.
pub const BLOCK_DIAGS: usize = 2 * BLOCK - 1;

/// Number of anti-diagonals crossing one `b × b` block.
#[inline]
pub const fn block_diags(b: usize) -> usize {
    2 * b - 1
}

/// Checked ceiling division for non-negative `i64` geometry math (block
/// counts, origin rounding). The open-coded `(x + d - 1) / d` form wraps
/// when `x` is within `d-1` of `i64::MAX`; this form cannot overflow for
/// any valid input, and rejects (loudly) the inputs that have no defined
/// answer instead of returning garbage.
#[inline]
pub const fn ceil_div(x: i64, d: i64) -> i64 {
    assert!(x >= 0, "ceil_div: dividend must be non-negative");
    assert!(d > 0, "ceil_div: divisor must be positive");
    if x == 0 {
        0
    } else {
        (x - 1) / d + 1
    }
}

/// Magnitude of the `i32` `-∞` sentinel: `|NEG_INF| = 2^30`.
pub const I32_SENTINEL_MAG: i64 = -(NEG_INF as i64);

/// Magnitude of the `i16` `-∞` sentinel: `|NEG_INF16| = 2^14`.
pub const I16_SENTINEL_MAG: i64 = -(crate::simd::NEG_INF16 as i64);

/// Largest admissible task *reach* (`step × (n+m+2)`, a bound on `|H|` over
/// every reachable DP value) for the i32 wavefront: half the sentinel
/// magnitude, i.e. `2^29`. See the derivation on [`BlockCtx::with_block_dim`].
pub const I32_REACH_BOUND: i64 = I32_SENTINEL_MAG / 2;

/// Largest admissible task reach for the i16 wavefront: half the i16
/// sentinel magnitude, i.e. `2^13`. See [`BlockCtx::with_block_dim`].
pub const I16_REACH_BOUND: i64 = I16_SENTINEL_MAG / 2;

/// Geometry and scoring context shared by all blocks of one task.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx<'a> {
    /// Reference length.
    pub n: i64,
    /// Query length.
    pub m: i64,
    /// Band half-width (large value = unbanded).
    pub w: i64,
    /// Block side length (8 or 16). Must agree with the `const B` of every
    /// staging buffer this ctx is used with; the fills debug-assert it.
    pub b: i64,
    /// Scoring parameters.
    pub scoring: &'a Scoring,
    /// Whether the wavefront (SIMD) fill is provably bit-identical to the
    /// scalar fill for this task: every DP value stays far enough from the
    /// `i32` limits that the scalar path's defensive `saturating_add` can
    /// never actually saturate. When `false`, [`FillMode::Simd`] silently
    /// degrades to the scalar fill.
    pub simd_exact: bool,
    /// Whether the narrow 16-bit wavefront fill is provably bit-identical to
    /// the scalar fill for this task: every *reachable* DP value stays far
    /// enough inside the `i16` range that (a) the entry conversion from the
    /// `i32` boundary carry is exact, (b) saturating `i16` arithmetic never
    /// saturates on a real value, and (c) sentinel-class values (derived
    /// from masked `-∞` cells) always lose every `max` against real values,
    /// exactly as in the `i32` fills. Strictly stronger than
    /// [`BlockCtx::simd_exact`]. When `false`, the i16 tier demotes to the
    /// i32 wavefront (or the scalar fill) — see [`BlockCtx::fill_tier`].
    pub i16_exact: bool,
    /// Wavefront backend resolved once per task (CPU feature detection is
    /// not free enough to repeat per block).
    pub wavefront_backend: crate::simd::WavefrontBackend,
    /// Precomputed per-query score rows ([`crate::profile::QueryProfile`])
    /// for substitution-matrix models: the SIMD fills read `S(c, Q[j])`
    /// from these rows instead of the two-level matrix lookup. `None` means
    /// the fills fall back to direct lookups (bit-identical by
    /// construction); the fixed model never uses a profile.
    pub profile: Option<&'a crate::profile::QueryProfile>,
}

impl<'a> BlockCtx<'a> {
    /// Build from task dimensions and scoring at the default (8×8) block
    /// geometry.
    pub fn new(n: usize, m: usize, scoring: &'a Scoring) -> BlockCtx<'a> {
        BlockCtx::with_block_dim(n, m, scoring, BLOCK)
    }

    /// Build from task dimensions, scoring and an explicit block side
    /// `b ∈ {8, 16}`.
    ///
    /// ## Derivation of the exactness gates
    ///
    /// Both wavefront gates are derived from the `-∞` sentinel encodings,
    /// not free-standing literals, so narrowing a sentinel or widening the
    /// geometry re-derives the bounds instead of silently weakening the
    /// proof. Let `step` be the largest per-cell score increment and
    /// `S = |sentinel|` (`2^30` for i32, `2^14` for i16). A tier is exact
    /// when both hold:
    ///
    /// 1. **Reach.** Every reachable DP value satisfies
    ///    `|H| ≤ reach = step × (n+m+2) < S/2`. Under this bound wrapping,
    ///    saturating and exact arithmetic agree on every real value, and
    ///    for the i16 tier the `i32 ↔ i16` boundary conversions are exact.
    /// 2. **Sentinel drift.** Masked cells re-enter the arithmetic as
    ///    exactly `-S`; inside one block a sentinel-derived candidate can
    ///    gain at most `step` per block anti-diagonal before the block
    ///    boundary re-masks it, i.e. at most `drift = step × (2b−1)` in
    ///    total. Requiring `drift < S/2` keeps every sentinel-class value
    ///    below `-S/2 < -reach ≤ min(H)`, so sentinels lose every `max`
    ///    against real values no matter which fill computed them. This is
    ///    where the block side enters the proof: doubling `b` doubles the
    ///    worst-case drift, so B=16 cannot silently weaken the gate.
    ///
    /// For tasks with `n + m + 2 ≥ 2b − 1` (everything but tiny tasks under
    /// extreme scoring) the reach condition subsumes the drift condition,
    /// which is why the historical 8×8 gates (`reach < 2^29`,
    /// `reach < 2^13`) were complete as literals.
    pub fn with_block_dim(n: usize, m: usize, scoring: &'a Scoring, b: usize) -> BlockCtx<'a> {
        assert!(b == BLOCK || b == MAX_BLOCK, "unsupported block dim {b}: expected 8 or 16");
        let (ni, mi) = (n as i64, m as i64);
        // Largest scoring increment that can be applied per DP step,
        // derived from the model's declared substitution bounds (for the
        // fixed DNA model this reproduces the historical
        // max(mismatch, ambig, match_score) arm exactly).
        let step = [
            scoring.gap_open as i64 + scoring.gap_extend as i64,
            scoring.gap_extend as i64,
            scoring.max_score() as i64,
            -(scoring.min_score() as i64),
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        let reach = step.saturating_mul(ni + mi + 2);
        let drift = step.saturating_mul(block_diags(b) as i64);
        let simd_exact = reach < I32_REACH_BOUND && drift < I32_REACH_BOUND;
        let i16_exact = reach < I16_REACH_BOUND && drift < I16_REACH_BOUND;
        BlockCtx {
            n: ni,
            m: mi,
            w: if scoring.banded() { scoring.band_width as i64 } else { ni + mi },
            b: b as i64,
            scoring,
            simd_exact,
            i16_exact,
            wavefront_backend: crate::simd::backend(),
            profile: None,
        }
    }

    /// Attach a prepared per-query score profile (matrix models only; see
    /// [`BlockCtx::profile`]). A profile built for a different matrix or
    /// query is ignored by the fills, so attaching is always safe.
    pub fn with_profile(mut self, profile: Option<&'a crate::profile::QueryProfile>) -> Self {
        self.profile = profile;
        self
    }

    /// Pick the block side for one task: the wide (16×16) geometry exactly
    /// when the full-width 16-lane i16 wavefront will actually run on it
    /// and the task shape amortizes the larger staging buffers; the default
    /// 8×8 geometry otherwise.
    ///
    /// The policy is deliberately conservative so that `auto` dispatch is
    /// never slower than forced B=8:
    ///
    /// * scalar mode or a forced `I32` precision → B=8 (the i32 wavefront
    ///   already fills its AVX2 vector at 8 lanes; B=16 i32 would fall back
    ///   to the portable fill below the AVX-512 backend);
    /// * below AVX2 → B=8 (SSE4.1 i16 vectors hold 8 lanes — nothing to
    ///   gain); AVX2 and AVX-512 both qualify (16×i16 kernels exist for
    ///   each);
    /// * the i16 gate must hold *at the wide geometry* (16-wide blocks
    ///   drift sentinels further; see [`BlockCtx::with_block_dim`]);
    /// * both sequences must span at least two wide blocks and the band
    ///   must admit at least a full wide diagonal (`w ≥ 16` or unbanded) —
    ///   otherwise most 16-lane vectors would run partially masked and the
    ///   larger per-block boundary work cannot amortize.
    pub fn geometry_for(
        n: usize,
        m: usize,
        scoring: &Scoring,
        mode: FillMode,
        precision: FillPrecision,
    ) -> usize {
        if mode != FillMode::Simd || precision == FillPrecision::I32 {
            return BLOCK;
        }
        if !matches!(
            crate::simd::backend(),
            crate::simd::WavefrontBackend::Avx2 | crate::simd::WavefrontBackend::Avx512
        ) {
            return BLOCK;
        }
        let wide = BlockCtx::with_block_dim(n, m, scoring, MAX_BLOCK);
        if !wide.i16_exact {
            return BLOCK;
        }
        let (ni, mi) = (n as i64, m as i64);
        if ni.min(mi) < 2 * MAX_BLOCK as i64 {
            return BLOCK;
        }
        if scoring.banded() && (scoring.band_width as i64) < MAX_BLOCK as i64 {
            return BLOCK;
        }
        MAX_BLOCK
    }

    /// Resolve the per-task fill implementation tier from the requested
    /// mode and precision: the narrowest tier whose exactness is *proven*
    /// by the precompute gates. `Auto` and `I16` both prefer the 16-bit
    /// wavefront and demote (`i16 → i32 → scalar`) when a gate fails; `I32`
    /// never uses the i16 tier. [`FillMode::Scalar`] ignores precision.
    #[inline]
    pub fn fill_tier(&self, mode: FillMode, precision: FillPrecision) -> FillTier {
        match (mode, precision) {
            (FillMode::Scalar, _) => FillTier::Scalar,
            (FillMode::Simd, FillPrecision::Auto | FillPrecision::I16) if self.i16_exact => {
                FillTier::I16
            }
            (FillMode::Simd, _) if self.simd_exact => FillTier::I32,
            (FillMode::Simd, _) => FillTier::Scalar,
        }
    }

    /// Whether cell `(i, j)` exists (inside table and band).
    #[inline(always)]
    pub fn valid(&self, i: i64, j: i64) -> bool {
        i < self.n && j < self.m && (i - j).abs() <= self.w
    }

    /// Number of reference blocks.
    #[inline]
    pub fn ref_blocks(&self) -> i64 {
        ceil_div(self.n, self.b)
    }

    /// Number of query blocks.
    #[inline]
    pub fn query_blocks(&self) -> i64 {
        ceil_div(self.m, self.b)
    }

    /// Inclusive range of reference-block columns a query-block row `bj`
    /// must compute so that every in-band cell of its rows is covered.
    pub fn row_block_range(&self, bj: i64) -> Option<(i64, i64)> {
        let b = self.b;
        let j_lo = bj * b;
        let j_hi = (j_lo + b - 1).min(self.m - 1);
        if j_lo >= self.m {
            return None;
        }
        let i_lo = (j_lo - self.w).max(0);
        let i_hi = (j_hi + self.w).min(self.n - 1);
        if i_lo > i_hi {
            return None;
        }
        Some((i_lo / b, i_hi / b))
    }

    /// Inclusive valid-lane range of block anti-diagonal `d` for the block
    /// at `(i0, j0)`: lanes `l` (reference offset) whose cell
    /// `(i0+l, j0+d-l)` is inside the table and the band, or `None` when the
    /// diagonal has no valid cell. Shared by both fill paths so masking is
    /// identical by construction.
    #[inline]
    pub fn lane_range(&self, i0: i64, j0: i64, d: usize) -> Option<(usize, usize)> {
        let d = d as i64;
        let b = self.b;
        let off = i0 - j0;
        // l >= d - (m-1-j0)  (j < m);  l <= n-1-i0  (i < n);
        // |off + 2l - d| <= w  (band);  max(0, d-(b-1)) <= l <= min(b-1, d)
        // (block shape: 0 <= l < b and 0 <= d-l < b).
        let lo =
            0.max(d - (b - 1)).max(d - (self.m - 1 - j0)).max((d - self.w - off + 1).div_euclid(2));
        let hi = (b - 1).min(d).min(self.n - 1 - i0).min((d + self.w - off).div_euclid(2));
        if lo <= hi {
            Some((lo as usize, hi as usize))
        } else {
            None
        }
    }

    /// Whether the whole block at `(i0, j0)` lies inside the table and the
    /// band (every one of its `B²` cells valid). The valid region is an
    /// intersection of half-planes, so checking the four corners suffices.
    #[inline]
    pub fn block_interior(&self, i0: i64, j0: i64) -> bool {
        let b = self.b;
        self.valid(i0 + b - 1, j0)
            && self.valid(i0, j0 + b - 1)
            && self.valid(i0 + b - 1, j0 + b - 1)
    }
}

/// One boundary pair (`H` plus the direction-specific gap score) spanning
/// `BLOCK` cells of the default geometry.
pub type Boundary = [i32; BLOCK];

/// A boundary at an explicit block geometry. Boundary carries stay `i32`
/// in every tier (converted exactly at block entry/exit), so callers thread
/// the same state through all fills of one geometry.
pub type BoundaryT<const B: usize> = [i32; B];

/// Cell-value scalar of a block staging buffer: `i32` for the full-width
/// tiers, `i16` for the narrow tier. `MASKED` is the width's `-∞` sentinel.
pub trait CellValue: Copy + PartialEq + std::fmt::Debug + 'static {
    /// The masked ("-∞") encoding at this width.
    const MASKED: Self;
}

impl CellValue for i32 {
    const MASKED: i32 = NEG_INF;
}

impl CellValue for i16 {
    const MASKED: i16 = crate::simd::NEG_INF16;
}

/// Staging buffer for one computed `B×B` block: the masked `H` value of
/// every cell plus a per-block-anti-diagonal validity bitmask, laid out
/// anti-diagonal-major so [`crate::diag::DiagTracker::on_block`] folds each
/// diagonal's cells contiguously (and in ascending `i`, preserving the
/// canonical tie-break).
///
/// `h[d][l]` holds `H(i0+l, j0+d-l)` masked to [`CellValue::MASKED`] for
/// out-of-band / out-of-table cells; bit `l` of `mask[d]` is set iff that
/// cell is valid. Slots outside the block shape (`l > d` or `d - l >= B`)
/// are unspecified — consumers must consult `mask`.
///
/// The buffer is sized for the *widest* geometry ([`MAX_BLOCK_DIAGS`] rows)
/// at every `B` so geometry stays a per-task choice without `generic_const_exprs`;
/// only the first `2B-1` rows of `h`/`mask` are ever written or read. Each
/// row is exactly `[T; B]`, so the hot row stride of the default geometry
/// is unchanged (32 bytes for `i32×8`).
#[derive(Debug, Clone)]
pub struct BlockCellsT<T, const B: usize> {
    i0: i32,
    j0: i32,
    /// Masked `H` values, anti-diagonal-major. Rows `2B-1..` are unused.
    pub h: [[T; B]; MAX_BLOCK_DIAGS],
    /// Valid-cell bitmask per block anti-diagonal (bit `l` = lane `l`).
    pub mask: [u16; MAX_BLOCK_DIAGS],
}

impl<T: CellValue, const B: usize> BlockCellsT<T, B> {
    /// Number of block anti-diagonals actually used at this geometry.
    pub const DIAGS: usize = 2 * B - 1;

    /// Empty staging buffer (no valid cells).
    pub fn new() -> BlockCellsT<T, B> {
        BlockCellsT {
            i0: 0,
            j0: 0,
            h: [[T::MASKED; B]; MAX_BLOCK_DIAGS],
            mask: [0; MAX_BLOCK_DIAGS],
        }
    }

    /// Set the block origin with a *checked* narrowing from the engines'
    /// `i64` geometry to the `i32` cell-coordinate width: this is the one
    /// place block coordinates change width, and it refuses (loudly) to
    /// truncate instead of wrapping. Task admission
    /// ([`crate::task::check_dims`]) guarantees it never fires for admitted
    /// tasks.
    pub fn set_origin(&mut self, i0: i64, j0: i64) {
        self.i0 = i32::try_from(i0)
            .expect("block reference origin exceeds i32: task admission must reject such inputs");
        self.j0 = i32::try_from(j0)
            .expect("block query origin exceeds i32: task admission must reject such inputs");
    }

    /// Reference coordinate of the block's first row.
    #[inline]
    pub fn i0(&self) -> i32 {
        self.i0
    }

    /// Query coordinate of the block's first column.
    #[inline]
    pub fn j0(&self) -> i32 {
        self.j0
    }
}

impl<T: CellValue, const B: usize> Default for BlockCellsT<T, B> {
    fn default() -> BlockCellsT<T, B> {
        BlockCellsT::new()
    }
}

/// Default-geometry i32 staging buffer (see [`BlockCellsT`]).
pub type BlockCells = BlockCellsT<i32, BLOCK>;

/// Default-geometry i16 staging buffer, written by
/// [`crate::simd::fill_wavefront_i16`] and folded whole-block by
/// [`crate::diag::DiagTracker::on_block_i16`]. Valid lanes hold exactly the
/// value the scalar fill computes (widened), which is what makes the i16
/// tier bit-identical task-wide.
pub type BlockCells16 = BlockCellsT<i16, BLOCK>;

/// Wide-geometry (16×16) i32 staging buffer.
pub type BlockCellsWide = BlockCellsT<i32, MAX_BLOCK>;

/// Wide-geometry (16×16) i16 staging buffer — the geometry whose block
/// anti-diagonals fill all 16 lanes of an AVX2 i16 vector.
pub type BlockCells16Wide = BlockCellsT<i16, MAX_BLOCK>;

/// Which implementation fills a block's cells. Both produce bit-identical
/// staging buffers and boundary updates; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillMode {
    /// Row-major scalar fill (the reference implementation).
    Scalar,
    /// Anti-diagonal wavefront fill from [`crate::simd`]: AVX2 on x86-64
    /// when available, a portable wavefront otherwise. Falls back to
    /// `Scalar` for tasks where exactness cannot be guaranteed
    /// ([`BlockCtx::simd_exact`]).
    Simd,
}

/// Requested lane precision for the wavefront fill. Orthogonal to
/// [`FillMode`]: the mode picks scalar vs wavefront, the precision picks
/// which wavefront tier to *prefer*; [`BlockCtx::fill_tier`] resolves both
/// (plus the per-task exactness gates) into the [`FillTier`] actually run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPrecision {
    /// Narrowest provable tier: i16 when [`BlockCtx::i16_exact`], else i32
    /// when [`BlockCtx::simd_exact`], else scalar.
    #[default]
    Auto,
    /// Never use the i16 tier (i32 wavefront, or scalar when unprovable).
    I32,
    /// Prefer the i16 tier explicitly. Still demotes exactly like `Auto`
    /// when the gate cannot prove i16 exactness — correctness always wins —
    /// but the intent is observable (demotions are counted by callers).
    I16,
}

impl FillPrecision {
    /// Stable lower-case name (stats output, bench rows); the inverse of
    /// [`FillPrecision::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FillPrecision::Auto => "auto",
            FillPrecision::I32 => "i32",
            FillPrecision::I16 => "i16",
        }
    }

    /// Parse a user-facing precision name (the CLI's `--precision` values
    /// and the `AGATHA_PRECISION` environment override).
    pub fn parse(s: &str) -> Result<FillPrecision, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(FillPrecision::Auto),
            "i32" => Ok(FillPrecision::I32),
            "i16" => Ok(FillPrecision::I16),
            other => Err(format!("invalid precision '{other}': expected auto, i32 or i16")),
        }
    }
}

/// Requested block geometry. Orthogonal to both [`FillMode`] and
/// [`FillPrecision`]: geometry picks the tiling (`B×B` block side), the
/// others pick the fill implementation within a block.
/// [`BlockCtx::geometry_for`] resolves `Auto` per task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockDim {
    /// Per-task adaptive choice ([`BlockCtx::geometry_for`]).
    #[default]
    Auto,
    /// Force the paper's 8×8 geometry.
    B8,
    /// Force the wide 16×16 geometry (16 i16 lanes per block diagonal).
    B16,
}

impl BlockDim {
    /// Stable lower-case name (stats output, bench rows); the inverse of
    /// [`BlockDim::parse`].
    pub fn name(self) -> &'static str {
        match self {
            BlockDim::Auto => "auto",
            BlockDim::B8 => "8",
            BlockDim::B16 => "16",
        }
    }

    /// Parse a user-facing geometry name (the CLI's `--block` values and
    /// the `AGATHA_BLOCK` environment override).
    pub fn parse(s: &str) -> Result<BlockDim, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(BlockDim::Auto),
            "8" | "b8" => Ok(BlockDim::B8),
            "16" | "b16" => Ok(BlockDim::B16),
            other => Err(format!("invalid block dim '{other}': expected auto, 8 or 16")),
        }
    }

    /// Resolve to a concrete block side for one task.
    #[inline]
    pub fn resolve(
        self,
        n: usize,
        m: usize,
        scoring: &Scoring,
        mode: FillMode,
        precision: FillPrecision,
    ) -> usize {
        match self {
            BlockDim::Auto => BlockCtx::geometry_for(n, m, scoring, mode, precision),
            BlockDim::B8 => BLOCK,
            BlockDim::B16 => MAX_BLOCK,
        }
    }
}

/// The fill implementation tier resolved per task by
/// [`BlockCtx::fill_tier`]. All three produce bit-identical [`crate::diag::DiagTracker`]
/// observations (and therefore identical task results); they differ only in
/// speed and in which exactness gate they require.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillTier {
    /// Row-major scalar reference fill.
    Scalar,
    /// Full-width i32 anti-diagonal wavefront (requires
    /// [`BlockCtx::simd_exact`]).
    I32,
    /// 16-bit-lane anti-diagonal wavefront (requires [`BlockCtx::i16_exact`]).
    I16,
}

impl FillTier {
    /// Stable lower-case name (stats output, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            FillTier::Scalar => "scalar",
            FillTier::I32 => "i32",
            FillTier::I16 => "i16",
        }
    }
}

/// The build-time default fill: `Simd` iff the `simd` cargo feature is
/// enabled.
#[inline]
pub fn default_fill_mode() -> FillMode {
    if cfg!(feature = "simd") {
        FillMode::Simd
    } else {
        FillMode::Scalar
    }
}

/// Compute one block with the build-time default [`FillMode`].
///
/// * `rcodes`/`qcodes`: base codes for the block's reference/query spans
///   (N-padded past the sequence end, as [`PackedSeq::unpack_block`] yields).
/// * `corner`: `H(i0-1, j0-1)` (already masked/bordered by the caller).
/// * `west_h`/`west_e`: in `H/E(i0-1, j0+k)`; out `H/E(i0+B-1, j0+k)`.
/// * `north_h`/`north_f`: in `H/F(i0+k, j0-1)`; out `H/F(i0+k, j0+B-1)`.
/// * Every cell's masked `H` lands in `cells`; the caller feeds the whole
///   block to the tracker at once via
///   [`crate::diag::DiagTracker::on_block`].
#[allow(clippy::too_many_arguments)]
pub fn compute_block<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i32, B>,
) {
    compute_block_mode(
        default_fill_mode(),
        ctx,
        i0,
        j0,
        rcodes,
        qcodes,
        corner,
        west_h,
        west_e,
        north_h,
        north_f,
        cells,
    );
}

/// [`compute_block`] with an explicit [`FillMode`] (benchmarks and the
/// kernel's configuration toggle select the mode per run).
#[allow(clippy::too_many_arguments)]
pub fn compute_block_mode<const B: usize>(
    mode: FillMode,
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i32, B>,
) {
    debug_assert_eq!(ctx.b, B as i64, "ctx geometry must match the staging buffer geometry");
    cells.set_origin(i0, j0);
    match mode {
        FillMode::Simd if ctx.simd_exact => crate::simd::fill_wavefront::<B>(
            ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
        ),
        _ => fill_scalar(
            ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
        ),
    }
}

/// [`compute_block`] on the 16-bit tier: fills one block with the i16
/// wavefront ([`crate::simd::fill_wavefront_i16`]), staging masked `H`
/// values into a [`BlockCells16`]-shaped buffer for
/// [`crate::diag::DiagTracker::on_block_i16`]. Boundary carries stay `i32`
/// at the interface (converted exactly at block entry/exit), so callers
/// thread the same boundary state through every tier.
///
/// Callers must only select this tier for tasks whose
/// [`BlockCtx::i16_exact`] gate holds *at this geometry* — that is what
/// proves valid-lane values equal the scalar fill bit for bit. The assert
/// turns a broken dispatch into a loud failure instead of silent score
/// corruption.
#[allow(clippy::too_many_arguments)]
pub fn compute_block_i16<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i16, B>,
) {
    assert!(
        ctx.i16_exact,
        "compute_block_i16 dispatched without the i16 exactness gate; \
         use BlockCtx::fill_tier to resolve the tier"
    );
    debug_assert_eq!(ctx.b, B as i64, "ctx geometry must match the staging buffer geometry");
    cells.set_origin(i0, j0);
    crate::simd::fill_wavefront_i16(
        ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
    );
}

/// Row-major scalar reference fill.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_scalar<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; B],
    qcodes: &[u8; B],
    corner: i32,
    west_h: &mut BoundaryT<B>,
    west_e: &mut BoundaryT<B>,
    north_h: &mut BoundaryT<B>,
    north_f: &mut BoundaryT<B>,
    cells: &mut BlockCellsT<i32, B>,
) {
    let sc = ctx.scoring;
    let oe = sc.gap_open + sc.gap_extend;
    let ext = sc.gap_extend;
    let mut carry = corner; // H(i-1, j0-1) for the current column i

    cells.mask[..block_diags(B)].fill(0);
    for l in 0..B {
        let i = i0 + l as i64;
        let mut diag = carry; // H(i-1, j-1) as j advances
        let mut left_h = north_h[l]; // H(i, j-1)
        let mut left_f = north_f[l]; // F(i, j-1)
        for k in 0..B {
            let j = j0 + k as i64;
            let up_h = west_h[k];
            let up_e = west_e[k];

            let e = (up_h - oe).max(up_e - ext);
            let f = (left_h - oe).max(left_f - ext);
            let sub = sc.substitution(rcodes[l], qcodes[k]);
            let mut h = e.max(f).max(diag.saturating_add(sub));

            let (mut ev, mut fv) = (e, f);
            if ctx.valid(i, j) {
                cells.mask[l + k] |= 1 << l;
            } else {
                // Masked: out-of-band / out-of-table cells must read as -∞
                // to every neighbour, exactly like the scalar reference.
                h = NEG_INF;
                ev = NEG_INF;
                fv = NEG_INF;
            }
            cells.h[l + k][l] = h;

            diag = up_h;
            west_h[k] = h;
            west_e[k] = ev;
            left_h = h;
            left_f = fv;
        }
        // Corner for the next column is the *input* north value of this one.
        carry = north_h[l];
        north_h[l] = left_h;
        north_f[l] = left_f;
    }
}

/// Prepare the west boundary for the first block of a row sweep starting at
/// reference position `i_start` (block-aligned): true borders when the sweep
/// starts at the table edge, `-∞` when it starts mid-table at the band edge.
pub fn west_init<const B: usize>(
    ctx: &BlockCtx<'_>,
    i_start: i64,
    j0: i64,
) -> (BoundaryT<B>, BoundaryT<B>) {
    let mut h = [NEG_INF; B];
    let e = [NEG_INF; B];
    if i_start == 0 {
        for (k, slot) in h.iter_mut().enumerate() {
            *slot = ctx.scoring.border((j0 + k as i64) as i32);
        }
    }
    (h, e)
}

/// Masked north-boundary read: `H/F(i, j0-1)` for a block starting at
/// reference `i0`. When `j0 == 0` this is the DP border; otherwise it is the
/// stored row boundary masked by band membership.
pub fn north_read<const B: usize>(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    row_h: &[i32],
    row_f: &[i32],
) -> (BoundaryT<B>, BoundaryT<B>) {
    let mut h = [NEG_INF; B];
    let mut f = [NEG_INF; B];
    for l in 0..B {
        let i = i0 + l as i64;
        if j0 == 0 {
            h[l] = ctx.scoring.border(i as i32);
        } else if (i - (j0 - 1)).abs() <= ctx.w && i < ctx.n {
            h[l] = row_h[i as usize];
            f[l] = row_f[i as usize];
        }
    }
    (h, f)
}

/// Masked corner read: `H(i0-1, j0-1)`.
pub fn corner_read(ctx: &BlockCtx<'_>, i0: i64, j0: i64, row_h: &[i32]) -> i32 {
    if i0 == 0 && j0 == 0 {
        0
    } else if i0 == 0 {
        ctx.scoring.border((j0 - 1) as i32)
    } else if j0 == 0 {
        ctx.scoring.border((i0 - 1) as i32)
    } else if ((i0 - 1) - (j0 - 1)).abs() <= ctx.w {
        row_h[(i0 - 1) as usize]
    } else {
        NEG_INF
    }
}

/// Reference block-grid driver: computes the whole banded table block by
/// block (query-block rows top-down, each sweeping its reference range) and
/// returns the exact guided result. Runs at the default (8×8) geometry;
/// [`block_grid_align_b`] takes an explicit geometry.
///
/// This is the skeleton every GPU engine elaborates (with different tiling,
/// checkpointing and cost accounting); it doubles as the validation target
/// proving the block DP matches the scalar reference.
pub fn block_grid_align(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> crate::result::GuidedResult {
    block_grid_align_b::<BLOCK>(reference, query, scoring)
}

/// [`block_grid_align`] at an explicit block geometry `B`.
pub fn block_grid_align_b<const B: usize>(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> crate::result::GuidedResult {
    let ctx = BlockCtx::with_block_dim(reference.len(), query.len(), scoring, B);
    let mut tracker = crate::diag::DiagTracker::new(reference.len(), query.len(), scoring);
    if reference.is_empty() || query.is_empty() {
        return tracker.result();
    }
    let b = B as i64;
    let padded_n = (ctx.ref_blocks() * b) as usize;
    let mut row_h = vec![NEG_INF; padded_n];
    let mut row_f = vec![NEG_INF; padded_n];

    let mut rblock = [0u8; B];
    let mut qblock = [0u8; B];
    let mut cells = BlockCellsT::<i32, B>::new();

    'rows: for bj in 0..ctx.query_blocks() {
        let j0 = bj * b;
        let Some((bi_lo, bi_hi)) = ctx.row_block_range(bj) else { continue };
        query.unpack_block(j0 as usize, &mut qblock);
        let i_start = bi_lo * b;
        let (mut west_h, mut west_e) = west_init::<B>(&ctx, i_start, j0);
        let mut corner = corner_read(&ctx, i_start, j0, &row_h);
        for bi in bi_lo..=bi_hi {
            let i0 = bi * b;
            reference.unpack_block(i0 as usize, &mut rblock);
            let (mut north_h, mut north_f) = north_read::<B>(&ctx, i0, j0, &row_h, &row_f);
            // Corner for the *next* block in this sweep, read before overwrite.
            let next_corner = north_h[B - 1];
            compute_block(
                &ctx,
                i0,
                j0,
                &rblock,
                &qblock,
                corner,
                &mut west_h,
                &mut west_e,
                &mut north_h,
                &mut north_f,
                &mut cells,
            );
            tracker.on_block(&cells);
            row_h[i0 as usize..i0 as usize + B].copy_from_slice(&north_h);
            row_f[i0 as usize..i0 as usize + B].copy_from_slice(&north_f);
            corner = next_corner;
            if tracker.is_finished() {
                break 'rows;
            }
        }
        if tracker.advance().is_some() {
            break;
        }
    }
    tracker.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn check(r: &str, q: &str, scoring: &Scoring) {
        let (r, q) = (seq(r), seq(q));
        let want = guided_align(&r, &q, scoring);
        let got = block_grid_align(&r, &q, scoring);
        assert!(got.same_alignment(&want), "\nblock: {got:?}\nscalar: {want:?}");
        assert_eq!(got.cells, want.cells, "reference cell counts must agree");
        assert_eq!(got.antidiags, want.antidiags);
        // The wide geometry covers the table with a different tiling but
        // must land on the same guided result.
        let wide = block_grid_align_b::<MAX_BLOCK>(&r, &q, scoring);
        assert!(wide.same_alignment(&want), "\nwide block: {wide:?}\nscalar: {want:?}");
        assert_eq!(wide.cells, want.cells);
        assert_eq!(wide.antidiags, want.antidiags);
    }

    #[test]
    fn matches_scalar_small_square() {
        let s = Scoring::figure1();
        check("AGATAGAT", "AGACTATC", &s);
    }

    #[test]
    fn matches_scalar_non_block_multiple() {
        let s = Scoring::figure1();
        check("AGATAGATA", "AGACTATCAGA", &s);
        check("AGA", "AGACT", &s);
        check("ACGTACGTACGTACGTA", "ACG", &s);
    }

    #[test]
    fn matches_scalar_banded() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 3);
        check("ACGTACGTACGTACGTACGTACGT", "ACGTACGTTCGTACGTACGAACGT", &s);
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 5);
        check("ACGTACGTACGTACGTACGTACGTACGTACGTACGT", "ACGTACGTACGTACG", &s);
    }

    #[test]
    fn matches_scalar_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 8, 6);
        check(
            "ACGTACGTACGTACGTGGGGGGGGGGGGGGGGGGGGGGGG",
            "ACGTACGTACGTACGTCCCCCCCCCCCCCCCCCCCCCCCC",
            &s,
        );
    }

    #[test]
    fn matches_scalar_band_exhaustion() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        check(&"ACGT".repeat(16), "ACGTA", &s);
    }

    #[test]
    fn matches_scalar_long_random_like() {
        // Deterministic pseudo-random-ish strings exercising many blocks.
        let mut r = String::new();
        let mut q = String::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for k in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            if k % 37 != 0 {
                q.push(c);
            }
            if k % 23 == 0 {
                q.push('T');
            }
        }
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        check(&r, &q, &s);
        let s = Scoring::preset_bwa().with_band(24);
        check(&r, &q, &s);
    }

    #[test]
    fn ceil_div_matches_naive_in_range() {
        for x in 0..200i64 {
            for d in 1..20i64 {
                assert_eq!(ceil_div(x, d), (x + d - 1) / d, "x={x} d={d}");
            }
        }
    }

    #[test]
    fn ceil_div_overflow_edges() {
        // The open-coded (x + d - 1) / d form wraps on these; the checked
        // helper must not.
        assert_eq!(ceil_div(i64::MAX, 1), i64::MAX);
        assert_eq!(ceil_div(i64::MAX, 2), i64::MAX / 2 + 1);
        assert_eq!(ceil_div(i64::MAX, i64::MAX), 1);
        assert_eq!(ceil_div(i64::MAX - 1, BLOCK as i64), (i64::MAX - 1) / 8 + 1);
        assert_eq!(ceil_div(0, i64::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "divisor must be positive")]
    fn ceil_div_rejects_zero_divisor() {
        ceil_div(8, 0);
    }

    #[test]
    #[should_panic(expected = "dividend must be non-negative")]
    fn ceil_div_rejects_negative_dividend() {
        ceil_div(-1, 8);
    }

    #[test]
    fn reach_bounds_derive_to_the_historical_literals() {
        // PR 3/4 shipped the gates as free-standing literals; the derived
        // forms must be the same numbers or every exactness proof changes.
        assert_eq!(I32_REACH_BOUND, 1 << 29);
        assert_eq!(I16_REACH_BOUND, 1 << 13);
        assert_eq!(I32_SENTINEL_MAG, 1 << 30);
        assert_eq!(I16_SENTINEL_MAG, 1 << 14);
    }

    #[test]
    fn matrix_model_gates_derive_from_declared_bounds() {
        // Under BLOSUM62 the per-step increment is the declared matrix
        // maximum (11, tying gap_open + gap_extend = 11 in the preset), not
        // any DNA constant: reach = 11 × (n + m + 2).
        let sc = Scoring::preset_blosum62();
        // 250×250 → 11 × 502 = 5522 < 2^13: both geometries stay i16-exact.
        for b in [BLOCK, MAX_BLOCK] {
            let ctx = BlockCtx::with_block_dim(250, 250, &sc, b);
            assert!(ctx.simd_exact && ctx.i16_exact, "b={b}");
        }
        // 400×400 → 11 × 802 = 8822 ≥ 2^13: the i16 tier demotes while the
        // i32 gate (bound 2^29) is nowhere near.
        for b in [BLOCK, MAX_BLOCK] {
            let ctx = BlockCtx::with_block_dim(400, 400, &sc, b);
            assert!(!ctx.i16_exact, "b={b}");
            assert!(ctx.simd_exact, "b={b}");
        }
        // A fixed model with the same magnitudes gates identically — the
        // step is model-independent once the bounds agree.
        let fixed = Scoring::new(11, 4, 10, 1, sc.zdrop, sc.band_width);
        assert_eq!(
            BlockCtx::with_block_dim(250, 250, &fixed, BLOCK).i16_exact,
            BlockCtx::with_block_dim(250, 250, &sc, BLOCK).i16_exact
        );
        assert_eq!(
            BlockCtx::with_block_dim(400, 400, &fixed, BLOCK).i16_exact,
            BlockCtx::with_block_dim(400, 400, &sc, BLOCK).i16_exact
        );
    }

    #[test]
    fn drift_gate_only_bites_tiny_tasks_under_extreme_scoring() {
        // Ordinary tasks: reach subsumes drift, both geometries gate alike.
        let sc = Scoring::preset_bwa();
        for b in [BLOCK, MAX_BLOCK] {
            let ctx = BlockCtx::with_block_dim(250, 250, &sc, b);
            assert!(ctx.simd_exact && ctx.i16_exact, "b={b}");
        }
        // A tiny task under huge scoring passes the reach gate but can
        // drift a sentinel past -S/2 inside one wide block: the drift arm
        // demotes it. step = 600, reach = 600*8 = 4800 < 2^13, but
        // drift(16) = 600*31 = 18600 >= 2^13 and drift(8) = 9000 >= 2^13.
        let sc = Scoring::new(600, 1, 0, 1, Scoring::NO_ZDROP, Scoring::NO_BAND);
        let narrow = BlockCtx::with_block_dim(3, 3, &sc, BLOCK);
        let wide = BlockCtx::with_block_dim(3, 3, &sc, MAX_BLOCK);
        assert!(!narrow.i16_exact && !wide.i16_exact);
        assert!(narrow.simd_exact && wide.simd_exact, "drift is tiny at i32 scale");
    }

    #[test]
    fn geometry_policy_is_conservative() {
        use crate::simd::WavefrontBackend;
        // The `want` computation below observes the resolved backend, which
        // forced-backend tests in `simd.rs` flip under this same lock.
        let _guard = crate::simd::backend_test_lock();
        let bwa = Scoring::preset_bwa();
        // Scalar mode and forced-i32 precision never pick the wide geometry.
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &bwa, FillMode::Scalar, FillPrecision::Auto),
            BLOCK
        );
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &bwa, FillMode::Simd, FillPrecision::I32),
            BLOCK
        );
        // Short sequences and narrow bands stay at 8 even when i16 is exact.
        assert_eq!(
            BlockCtx::geometry_for(20, 20, &bwa, FillMode::Simd, FillPrecision::Auto),
            BLOCK
        );
        let narrow_band = bwa.with_band(8);
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &narrow_band, FillMode::Simd, FillPrecision::Auto),
            BLOCK
        );
        // Overflowing scoring can never run the 16-lane i16 kernel.
        let hot = Scoring::new(1 << 12, 4, 6, 1, Scoring::NO_ZDROP, Scoring::NO_BAND);
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &hot, FillMode::Simd, FillPrecision::Auto),
            BLOCK
        );
        // The amortizable short-read shape picks 16 exactly on AVX2-or-wider
        // hosts (both have a 16×i16 kernel).
        let want = if matches!(
            crate::simd::backend(),
            WavefrontBackend::Avx2 | WavefrontBackend::Avx512
        ) {
            MAX_BLOCK
        } else {
            BLOCK
        };
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &bwa, FillMode::Simd, FillPrecision::Auto),
            want
        );
        assert_eq!(
            BlockCtx::geometry_for(240, 240, &bwa, FillMode::Simd, FillPrecision::I16),
            want
        );
    }

    #[test]
    fn row_block_range_geometry() {
        let sc = Scoring::new(1, 1, 1, 1, Scoring::NO_ZDROP, 4);
        let ctx = BlockCtx::new(64, 32, &sc);
        // row 0: j in [0,7], band w=4 → i in [0, 11] → blocks 0..=1
        assert_eq!(ctx.row_block_range(0), Some((0, 1)));
        // row 3: j in [24,31] → i in [20, 35] → blocks 2..=4
        assert_eq!(ctx.row_block_range(3), Some((2, 4)));
        // beyond query
        assert_eq!(ctx.row_block_range(4), None);
        // Wide geometry: row 0 covers j in [0,15] → i in [0, 19] → blocks 0..=1
        let wide = BlockCtx::with_block_dim(64, 32, &sc, MAX_BLOCK);
        assert_eq!(wide.row_block_range(0), Some((0, 1)));
        assert_eq!(wide.row_block_range(1), Some((0, 2)));
        assert_eq!(wide.row_block_range(2), None);
    }

    #[test]
    fn lane_range_agrees_with_valid() {
        // Brute-force cross-check of the closed-form lane intervals against
        // per-cell validity, over assorted block origins, bands and both
        // geometries.
        let cases = [
            (64usize, 32usize, 4i32),
            (20, 20, 2),
            (9, 40, 7),
            (40, 9, Scoring::NO_BAND),
            (8, 8, 1),
            (33, 47, 11),
        ];
        for b in [BLOCK, MAX_BLOCK] {
            for (n, m, w) in cases {
                let sc = Scoring::new(1, 1, 1, 1, Scoring::NO_ZDROP, w);
                let ctx = BlockCtx::with_block_dim(n, m, &sc, b);
                for bi in 0..ctx.ref_blocks() {
                    for bj in 0..ctx.query_blocks() {
                        let (i0, j0) = (bi * b as i64, bj * b as i64);
                        for d in 0..block_diags(b) {
                            let mut want = 0u16;
                            for l in 0..b.min(d + 1) {
                                let k = d - l;
                                if k < b && ctx.valid(i0 + l as i64, j0 + k as i64) {
                                    want |= 1 << l;
                                }
                            }
                            let got = match ctx.lane_range(i0, j0, d) {
                                None => 0u16,
                                Some((lo, hi)) => ((1u32 << (hi + 1)) - (1 << lo)) as u16,
                            };
                            assert_eq!(
                                got, want,
                                "b={b} n={n} m={m} w={w} block ({i0},{j0}) diag {d}: \
                                 lane_range {got:#018b} vs per-cell {want:#018b}"
                            );
                        }
                        // Interior check agrees with all-valid.
                        let all_valid = (0..block_diags(b)).all(|d| {
                            let full: u16 = (0..b.min(d + 1))
                                .filter(|&l| d - l < b)
                                .fold(0, |acc, l| acc | 1 << l);
                            let got = match ctx.lane_range(i0, j0, d) {
                                None => 0u16,
                                Some((lo, hi)) => ((1u32 << (hi + 1)) - (1 << lo)) as u16,
                            };
                            got == full
                        });
                        assert_eq!(
                            ctx.block_interior(i0, j0),
                            all_valid,
                            "b={b} ({i0},{j0}) w={w}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "task admission")]
    fn block_origin_narrowing_is_checked() {
        let mut cells = BlockCells::new();
        cells.set_origin(i32::MAX as i64 + 8, 0);
    }
}
