//! 8×8 cell-block computation — the "smallest unit for workload
//! distribution" (§2.2) shared by every GPU-style engine.
//!
//! A block covers reference positions `[i0, i0+8)` × query positions
//! `[j0, j0+8)`. Its inputs are the *west* boundary (`H`/`E` at
//! `(i0-1, j0+k)`), the *north* boundary (`H`/`F` at `(i0+k, j0-1)`), and
//! the corner `H(i0-1, j0-1)`; it produces the corresponding east/south
//! boundaries in place. Out-of-band and out-of-table cells are computed
//! (a real GPU block always executes all 64 cells) but **masked** to
//! `-∞` before they feed neighbours or the [`DiagTracker`], which is what
//! keeps tiled execution bit-identical to the scalar banded reference.
//!
//! ## Staged tracker updates
//!
//! Instead of a per-cell callback into the tracker (which serialises the
//! inner loop), [`compute_block`] writes its 64 masked `H` values into a
//! [`BlockCells`] staging buffer — anti-diagonal-major, one validity
//! bitmask per block diagonal — and the caller folds the whole block with
//! one [`DiagTracker::on_block`] call. With the callback gone the fill
//! itself is free to vectorise: [`FillMode::Simd`] runs the wavefront
//! kernel in [`crate::simd`] (AVX2 on x86-64, a portable wavefront
//! elsewhere), bit-identical to [`FillMode::Scalar`] by construction.
//!
//! [`DiagTracker`]: crate::diag::DiagTracker
//! [`DiagTracker::on_block`]: crate::diag::DiagTracker::on_block

use crate::pack::PackedSeq;
use crate::scoring::Scoring;
use crate::{BLOCK, NEG_INF};

/// Number of anti-diagonals crossing one `BLOCK × BLOCK` cell block.
pub const BLOCK_DIAGS: usize = 2 * BLOCK - 1;

/// Geometry and scoring context shared by all blocks of one task.
#[derive(Debug, Clone, Copy)]
pub struct BlockCtx<'a> {
    /// Reference length.
    pub n: i64,
    /// Query length.
    pub m: i64,
    /// Band half-width (large value = unbanded).
    pub w: i64,
    /// Scoring parameters.
    pub scoring: &'a Scoring,
    /// Whether the wavefront (SIMD) fill is provably bit-identical to the
    /// scalar fill for this task: every DP value stays far enough from the
    /// `i32` limits that the scalar path's defensive `saturating_add` can
    /// never actually saturate. When `false`, [`FillMode::Simd`] silently
    /// degrades to the scalar fill.
    pub simd_exact: bool,
    /// Whether the narrow 16-bit wavefront fill is provably bit-identical to
    /// the scalar fill for this task: every *reachable* DP value stays far
    /// enough inside the `i16` range that (a) the entry conversion from the
    /// `i32` boundary carry is exact, (b) saturating `i16` arithmetic never
    /// saturates on a real value, and (c) sentinel-class values (derived
    /// from masked `-∞` cells) always lose every `max` against real values,
    /// exactly as in the `i32` fills. Strictly stronger than
    /// [`BlockCtx::simd_exact`]. When `false`, the i16 tier demotes to the
    /// i32 wavefront (or the scalar fill) — see [`BlockCtx::fill_tier`].
    pub i16_exact: bool,
    /// Wavefront backend resolved once per task (CPU feature detection is
    /// not free enough to repeat per block).
    pub wavefront_backend: crate::simd::WavefrontBackend,
}

impl<'a> BlockCtx<'a> {
    /// Build from task dimensions and scoring.
    pub fn new(n: usize, m: usize, scoring: &'a Scoring) -> BlockCtx<'a> {
        let (ni, mi) = (n as i64, m as i64);
        // Largest scoring increment that can be applied per DP step. Scores
        // reachable from the borders are bounded by `steps × step`, so if
        // that product stays well inside i32 range (and `NEG_INF` retains
        // its 2^30 head-room below), wrapping and saturating arithmetic
        // agree on every value the block DP can produce.
        let step = [
            scoring.gap_open as i64 + scoring.gap_extend as i64,
            scoring.gap_extend as i64,
            scoring.mismatch as i64,
            scoring.ambig as i64,
            scoring.match_score as i64,
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        let reach = step.saturating_mul(ni + mi + 2);
        let simd_exact = reach < (1 << 29);
        // The i16 gate mirrors the i32 one at the narrower width: reachable
        // scores bounded well inside i16 range (< 2^13), leaving the same
        // factor-two headroom below for one subtracted penalty and keeping
        // real values strictly above every sentinel-class (-∞-derived)
        // value, so saturating i16 arithmetic is exact on everything the
        // tracker ever observes.
        let i16_exact = reach < (1 << 13);
        BlockCtx {
            n: ni,
            m: mi,
            w: if scoring.banded() { scoring.band_width as i64 } else { ni + mi },
            scoring,
            simd_exact,
            i16_exact,
            wavefront_backend: crate::simd::backend(),
        }
    }

    /// Resolve the per-task fill implementation tier from the requested
    /// mode and precision: the narrowest tier whose exactness is *proven*
    /// by the precompute gates. `Auto` and `I16` both prefer the 16-bit
    /// wavefront and demote (`i16 → i32 → scalar`) when a gate fails; `I32`
    /// never uses the i16 tier. [`FillMode::Scalar`] ignores precision.
    #[inline]
    pub fn fill_tier(&self, mode: FillMode, precision: FillPrecision) -> FillTier {
        match (mode, precision) {
            (FillMode::Scalar, _) => FillTier::Scalar,
            (FillMode::Simd, FillPrecision::Auto | FillPrecision::I16) if self.i16_exact => {
                FillTier::I16
            }
            (FillMode::Simd, _) if self.simd_exact => FillTier::I32,
            (FillMode::Simd, _) => FillTier::Scalar,
        }
    }

    /// Whether cell `(i, j)` exists (inside table and band).
    #[inline(always)]
    pub fn valid(&self, i: i64, j: i64) -> bool {
        i < self.n && j < self.m && (i - j).abs() <= self.w
    }

    /// Number of reference blocks.
    #[inline]
    pub fn ref_blocks(&self) -> i64 {
        (self.n + BLOCK as i64 - 1) / BLOCK as i64
    }

    /// Number of query blocks.
    #[inline]
    pub fn query_blocks(&self) -> i64 {
        (self.m + BLOCK as i64 - 1) / BLOCK as i64
    }

    /// Inclusive range of reference-block columns a query-block row `bj`
    /// must compute so that every in-band cell of its rows is covered.
    pub fn row_block_range(&self, bj: i64) -> Option<(i64, i64)> {
        let b = BLOCK as i64;
        let j_lo = bj * b;
        let j_hi = (j_lo + b - 1).min(self.m - 1);
        if j_lo >= self.m {
            return None;
        }
        let i_lo = (j_lo - self.w).max(0);
        let i_hi = (j_hi + self.w).min(self.n - 1);
        if i_lo > i_hi {
            return None;
        }
        Some((i_lo / b, i_hi / b))
    }

    /// Inclusive valid-lane range of block anti-diagonal `d` for the block
    /// at `(i0, j0)`: lanes `l` (reference offset) whose cell
    /// `(i0+l, j0+d-l)` is inside the table and the band, or `None` when the
    /// diagonal has no valid cell. Shared by both fill paths so masking is
    /// identical by construction.
    #[inline]
    pub fn lane_range(&self, i0: i64, j0: i64, d: usize) -> Option<(usize, usize)> {
        let d = d as i64;
        let b = BLOCK as i64;
        let off = i0 - j0;
        // l >= d - (m-1-j0)  (j < m);  l <= n-1-i0  (i < n);
        // |off + 2l - d| <= w  (band);  max(0, d-7) <= l <= min(7, d)
        // (block shape: 0 <= l < 8 and 0 <= d-l < 8).
        let lo =
            0.max(d - (b - 1)).max(d - (self.m - 1 - j0)).max((d - self.w - off + 1).div_euclid(2));
        let hi = (b - 1).min(d).min(self.n - 1 - i0).min((d + self.w - off).div_euclid(2));
        if lo <= hi {
            Some((lo as usize, hi as usize))
        } else {
            None
        }
    }

    /// Whether the whole block at `(i0, j0)` lies inside the table and the
    /// band (every one of its 64 cells valid). The valid region is an
    /// intersection of half-planes, so checking the four corners suffices.
    #[inline]
    pub fn block_interior(&self, i0: i64, j0: i64) -> bool {
        let b = BLOCK as i64;
        self.valid(i0 + b - 1, j0)
            && self.valid(i0, j0 + b - 1)
            && self.valid(i0 + b - 1, j0 + b - 1)
    }
}

/// One boundary pair (`H` plus the direction-specific gap score) spanning
/// `BLOCK` cells.
pub type Boundary = [i32; BLOCK];

/// Staging buffer for one computed block: the masked `H` value of every
/// cell plus a per-block-anti-diagonal validity bitmask, laid out
/// anti-diagonal-major so [`crate::diag::DiagTracker::on_block`] folds each
/// diagonal's cells contiguously (and in ascending `i`, preserving the
/// canonical tie-break).
///
/// `h[d][l]` holds `H(i0+l, j0+d-l)` masked to [`NEG_INF`] for out-of-band /
/// out-of-table cells; bit `l` of `mask[d]` is set iff that cell is valid.
/// Slots outside the block shape (`l > d` or `d - l >= BLOCK`) are
/// unspecified — consumers must consult `mask`.
#[derive(Debug, Clone)]
pub struct BlockCells {
    i0: i32,
    j0: i32,
    /// Masked `H` values, anti-diagonal-major.
    pub h: [[i32; BLOCK]; BLOCK_DIAGS],
    /// Valid-cell bitmask per block anti-diagonal (bit `l` = lane `l`).
    pub mask: [u8; BLOCK_DIAGS],
}

impl BlockCells {
    /// Empty staging buffer (no valid cells).
    pub fn new() -> BlockCells {
        BlockCells { i0: 0, j0: 0, h: [[NEG_INF; BLOCK]; BLOCK_DIAGS], mask: [0; BLOCK_DIAGS] }
    }

    /// Set the block origin with a *checked* narrowing from the engines'
    /// `i64` geometry to the `i32` cell-coordinate width: this is the one
    /// place block coordinates change width, and it refuses (loudly) to
    /// truncate instead of wrapping. Task admission
    /// ([`crate::task::check_dims`]) guarantees it never fires for admitted
    /// tasks.
    pub fn set_origin(&mut self, i0: i64, j0: i64) {
        self.i0 = i32::try_from(i0)
            .expect("block reference origin exceeds i32: task admission must reject such inputs");
        self.j0 = i32::try_from(j0)
            .expect("block query origin exceeds i32: task admission must reject such inputs");
    }

    /// Reference coordinate of the block's first row.
    #[inline]
    pub fn i0(&self) -> i32 {
        self.i0
    }

    /// Query coordinate of the block's first column.
    #[inline]
    pub fn j0(&self) -> i32 {
        self.j0
    }
}

impl Default for BlockCells {
    fn default() -> BlockCells {
        BlockCells::new()
    }
}

/// Staging buffer for one computed block in the narrow 16-bit tier: the
/// i16 analogue of [`BlockCells`], written by
/// [`crate::simd::fill_wavefront_i16`] and folded whole-block by
/// [`crate::diag::DiagTracker::on_block_i16`], so the i16 tier keeps the
/// same callback-free tracker interface as the i32 tiers.
///
/// `h[d][l]` holds `H(i0+l, j0+d-l)` masked to [`crate::simd::NEG_INF16`]
/// for out-of-band / out-of-table cells; bit `l` of `mask[d]` is set iff
/// that cell is valid. Slots outside the block shape are unspecified.
/// Valid lanes hold exactly the value the scalar fill computes (widened),
/// which is what makes the i16 tier bit-identical task-wide.
#[derive(Debug, Clone)]
pub struct BlockCells16 {
    i0: i32,
    j0: i32,
    /// Masked `H` values, anti-diagonal-major, at i16 width.
    pub h: [[i16; BLOCK]; BLOCK_DIAGS],
    /// Valid-cell bitmask per block anti-diagonal (bit `l` = lane `l`).
    pub mask: [u8; BLOCK_DIAGS],
}

impl BlockCells16 {
    /// Empty staging buffer (no valid cells).
    pub fn new() -> BlockCells16 {
        BlockCells16 {
            i0: 0,
            j0: 0,
            h: [[crate::simd::NEG_INF16; BLOCK]; BLOCK_DIAGS],
            mask: [0; BLOCK_DIAGS],
        }
    }

    /// Checked block-origin narrowing; see [`BlockCells::set_origin`].
    pub fn set_origin(&mut self, i0: i64, j0: i64) {
        self.i0 = i32::try_from(i0)
            .expect("block reference origin exceeds i32: task admission must reject such inputs");
        self.j0 = i32::try_from(j0)
            .expect("block query origin exceeds i32: task admission must reject such inputs");
    }

    /// Reference coordinate of the block's first row.
    #[inline]
    pub fn i0(&self) -> i32 {
        self.i0
    }

    /// Query coordinate of the block's first column.
    #[inline]
    pub fn j0(&self) -> i32 {
        self.j0
    }
}

impl Default for BlockCells16 {
    fn default() -> BlockCells16 {
        BlockCells16::new()
    }
}

/// Which implementation fills a block's cells. Both produce bit-identical
/// staging buffers and boundary updates; they differ only in speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillMode {
    /// Row-major scalar fill (the reference implementation).
    Scalar,
    /// Anti-diagonal wavefront fill from [`crate::simd`]: AVX2 on x86-64
    /// when available, a portable wavefront otherwise. Falls back to
    /// `Scalar` for tasks where exactness cannot be guaranteed
    /// ([`BlockCtx::simd_exact`]).
    Simd,
}

/// Requested lane precision for the wavefront fill. Orthogonal to
/// [`FillMode`]: the mode picks scalar vs wavefront, the precision picks
/// which wavefront tier to *prefer*; [`BlockCtx::fill_tier`] resolves both
/// (plus the per-task exactness gates) into the [`FillTier`] actually run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FillPrecision {
    /// Narrowest provable tier: i16 when [`BlockCtx::i16_exact`], else i32
    /// when [`BlockCtx::simd_exact`], else scalar.
    #[default]
    Auto,
    /// Never use the i16 tier (i32 wavefront, or scalar when unprovable).
    I32,
    /// Prefer the i16 tier explicitly. Still demotes exactly like `Auto`
    /// when the gate cannot prove i16 exactness — correctness always wins —
    /// but the intent is observable (demotions are counted by callers).
    I16,
}

impl FillPrecision {
    /// Stable lower-case name (stats output, bench rows); the inverse of
    /// [`FillPrecision::parse`].
    pub fn name(self) -> &'static str {
        match self {
            FillPrecision::Auto => "auto",
            FillPrecision::I32 => "i32",
            FillPrecision::I16 => "i16",
        }
    }

    /// Parse a user-facing precision name (the CLI's `--precision` values
    /// and the `AGATHA_PRECISION` environment override).
    pub fn parse(s: &str) -> Result<FillPrecision, String> {
        match s.to_ascii_lowercase().as_str() {
            "auto" => Ok(FillPrecision::Auto),
            "i32" => Ok(FillPrecision::I32),
            "i16" => Ok(FillPrecision::I16),
            other => Err(format!("invalid precision '{other}': expected auto, i32 or i16")),
        }
    }
}

/// The fill implementation tier resolved per task by
/// [`BlockCtx::fill_tier`]. All three produce bit-identical [`crate::diag::DiagTracker`]
/// observations (and therefore identical task results); they differ only in
/// speed and in which exactness gate they require.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FillTier {
    /// Row-major scalar reference fill.
    Scalar,
    /// 8-lane i32 anti-diagonal wavefront (requires [`BlockCtx::simd_exact`]).
    I32,
    /// 16-bit-lane anti-diagonal wavefront (requires [`BlockCtx::i16_exact`]).
    I16,
}

impl FillTier {
    /// Stable lower-case name (stats output, bench rows).
    pub fn name(self) -> &'static str {
        match self {
            FillTier::Scalar => "scalar",
            FillTier::I32 => "i32",
            FillTier::I16 => "i16",
        }
    }
}

/// The build-time default fill: `Simd` iff the `simd` cargo feature is
/// enabled.
#[inline]
pub fn default_fill_mode() -> FillMode {
    if cfg!(feature = "simd") {
        FillMode::Simd
    } else {
        FillMode::Scalar
    }
}

/// Compute one block with the build-time default [`FillMode`].
///
/// * `rcodes`/`qcodes`: base codes for the block's reference/query spans
///   (N-padded past the sequence end, as [`PackedSeq::unpack_block`] yields).
/// * `corner`: `H(i0-1, j0-1)` (already masked/bordered by the caller).
/// * `west_h`/`west_e`: in `H/E(i0-1, j0+k)`; out `H/E(i0+BLOCK-1, j0+k)`.
/// * `north_h`/`north_f`: in `H/F(i0+k, j0-1)`; out `H/F(i0+k, j0+BLOCK-1)`.
/// * Every cell's masked `H` lands in `cells`; the caller feeds the whole
///   block to the tracker at once via
///   [`crate::diag::DiagTracker::on_block`].
#[allow(clippy::too_many_arguments)]
pub fn compute_block(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; BLOCK],
    qcodes: &[u8; BLOCK],
    corner: i32,
    west_h: &mut Boundary,
    west_e: &mut Boundary,
    north_h: &mut Boundary,
    north_f: &mut Boundary,
    cells: &mut BlockCells,
) {
    compute_block_mode(
        default_fill_mode(),
        ctx,
        i0,
        j0,
        rcodes,
        qcodes,
        corner,
        west_h,
        west_e,
        north_h,
        north_f,
        cells,
    );
}

/// [`compute_block`] with an explicit [`FillMode`] (benchmarks and the
/// kernel's configuration toggle select the mode per run).
#[allow(clippy::too_many_arguments)]
pub fn compute_block_mode(
    mode: FillMode,
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; BLOCK],
    qcodes: &[u8; BLOCK],
    corner: i32,
    west_h: &mut Boundary,
    west_e: &mut Boundary,
    north_h: &mut Boundary,
    north_f: &mut Boundary,
    cells: &mut BlockCells,
) {
    cells.set_origin(i0, j0);
    match mode {
        FillMode::Simd if ctx.simd_exact => crate::simd::fill_wavefront(
            ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
        ),
        _ => fill_scalar(
            ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
        ),
    }
}

/// [`compute_block`] on the 16-bit tier: fills one block with the i16
/// wavefront ([`crate::simd::fill_wavefront_i16`]), staging masked `H`
/// values into a [`BlockCells16`] buffer for
/// [`crate::diag::DiagTracker::on_block_i16`]. Boundary carries stay `i32`
/// at the interface (converted exactly at block entry/exit), so callers
/// thread the same `Boundary` state through every tier.
///
/// Callers must only select this tier for tasks whose
/// [`BlockCtx::i16_exact`] gate holds — that is what proves valid-lane
/// values equal the scalar fill bit for bit. The assert turns a broken
/// dispatch into a loud failure instead of silent score corruption.
#[allow(clippy::too_many_arguments)]
pub fn compute_block_i16(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; BLOCK],
    qcodes: &[u8; BLOCK],
    corner: i32,
    west_h: &mut Boundary,
    west_e: &mut Boundary,
    north_h: &mut Boundary,
    north_f: &mut Boundary,
    cells: &mut BlockCells16,
) {
    assert!(
        ctx.i16_exact,
        "compute_block_i16 dispatched without the i16 exactness gate; \
         use BlockCtx::fill_tier to resolve the tier"
    );
    cells.set_origin(i0, j0);
    crate::simd::fill_wavefront_i16(
        ctx, i0, j0, rcodes, qcodes, corner, west_h, west_e, north_h, north_f, cells,
    );
}

/// Row-major scalar reference fill.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fill_scalar(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    rcodes: &[u8; BLOCK],
    qcodes: &[u8; BLOCK],
    corner: i32,
    west_h: &mut Boundary,
    west_e: &mut Boundary,
    north_h: &mut Boundary,
    north_f: &mut Boundary,
    cells: &mut BlockCells,
) {
    let sc = ctx.scoring;
    let oe = sc.gap_open + sc.gap_extend;
    let ext = sc.gap_extend;
    let mut carry = corner; // H(i-1, j0-1) for the current column i

    cells.mask = [0; BLOCK_DIAGS];
    for l in 0..BLOCK {
        let i = i0 + l as i64;
        let mut diag = carry; // H(i-1, j-1) as j advances
        let mut left_h = north_h[l]; // H(i, j-1)
        let mut left_f = north_f[l]; // F(i, j-1)
        for k in 0..BLOCK {
            let j = j0 + k as i64;
            let up_h = west_h[k];
            let up_e = west_e[k];

            let e = (up_h - oe).max(up_e - ext);
            let f = (left_h - oe).max(left_f - ext);
            let sub = sc.substitution(rcodes[l], qcodes[k]);
            let mut h = e.max(f).max(diag.saturating_add(sub));

            let (mut ev, mut fv) = (e, f);
            if ctx.valid(i, j) {
                cells.mask[l + k] |= 1 << l;
            } else {
                // Masked: out-of-band / out-of-table cells must read as -∞
                // to every neighbour, exactly like the scalar reference.
                h = NEG_INF;
                ev = NEG_INF;
                fv = NEG_INF;
            }
            cells.h[l + k][l] = h;

            diag = up_h;
            west_h[k] = h;
            west_e[k] = ev;
            left_h = h;
            left_f = fv;
        }
        // Corner for the next column is the *input* north value of this one.
        carry = north_h[l];
        north_h[l] = left_h;
        north_f[l] = left_f;
    }
}

/// Prepare the west boundary for the first block of a row sweep starting at
/// reference position `i_start` (block-aligned): true borders when the sweep
/// starts at the table edge, `-∞` when it starts mid-table at the band edge.
pub fn west_init(ctx: &BlockCtx<'_>, i_start: i64, j0: i64) -> (Boundary, Boundary) {
    let mut h = [NEG_INF; BLOCK];
    let e = [NEG_INF; BLOCK];
    if i_start == 0 {
        for (k, slot) in h.iter_mut().enumerate() {
            *slot = ctx.scoring.border((j0 + k as i64) as i32);
        }
    }
    (h, e)
}

/// Masked north-boundary read: `H/F(i, j0-1)` for a block starting at
/// reference `i0`. When `j0 == 0` this is the DP border; otherwise it is the
/// stored row boundary masked by band membership.
pub fn north_read(
    ctx: &BlockCtx<'_>,
    i0: i64,
    j0: i64,
    row_h: &[i32],
    row_f: &[i32],
) -> (Boundary, Boundary) {
    let mut h = [NEG_INF; BLOCK];
    let mut f = [NEG_INF; BLOCK];
    for l in 0..BLOCK {
        let i = i0 + l as i64;
        if j0 == 0 {
            h[l] = ctx.scoring.border(i as i32);
        } else if (i - (j0 - 1)).abs() <= ctx.w && i < ctx.n {
            h[l] = row_h[i as usize];
            f[l] = row_f[i as usize];
        }
    }
    (h, f)
}

/// Masked corner read: `H(i0-1, j0-1)`.
pub fn corner_read(ctx: &BlockCtx<'_>, i0: i64, j0: i64, row_h: &[i32]) -> i32 {
    if i0 == 0 && j0 == 0 {
        0
    } else if i0 == 0 {
        ctx.scoring.border((j0 - 1) as i32)
    } else if j0 == 0 {
        ctx.scoring.border((i0 - 1) as i32)
    } else if ((i0 - 1) - (j0 - 1)).abs() <= ctx.w {
        row_h[(i0 - 1) as usize]
    } else {
        NEG_INF
    }
}

/// Reference block-grid driver: computes the whole banded table block by
/// block (query-block rows top-down, each sweeping its reference range) and
/// returns the exact guided result.
///
/// This is the skeleton every GPU engine elaborates (with different tiling,
/// checkpointing and cost accounting); it doubles as the validation target
/// proving the block DP matches the scalar reference.
pub fn block_grid_align(
    reference: &PackedSeq,
    query: &PackedSeq,
    scoring: &Scoring,
) -> crate::result::GuidedResult {
    let ctx = BlockCtx::new(reference.len(), query.len(), scoring);
    let mut tracker = crate::diag::DiagTracker::new(reference.len(), query.len(), scoring);
    if reference.is_empty() || query.is_empty() {
        return tracker.result();
    }
    let b = BLOCK as i64;
    let padded_n = (ctx.ref_blocks() * b) as usize;
    let mut row_h = vec![NEG_INF; padded_n];
    let mut row_f = vec![NEG_INF; padded_n];

    let mut rblock = [0u8; BLOCK];
    let mut qblock = [0u8; BLOCK];
    let mut cells = BlockCells::new();

    'rows: for bj in 0..ctx.query_blocks() {
        let j0 = bj * b;
        let Some((bi_lo, bi_hi)) = ctx.row_block_range(bj) else { continue };
        query.unpack_block(j0 as usize, &mut qblock);
        let i_start = bi_lo * b;
        let (mut west_h, mut west_e) = west_init(&ctx, i_start, j0);
        let mut corner = corner_read(&ctx, i_start, j0, &row_h);
        for bi in bi_lo..=bi_hi {
            let i0 = bi * b;
            reference.unpack_block(i0 as usize, &mut rblock);
            let (mut north_h, mut north_f) = north_read(&ctx, i0, j0, &row_h, &row_f);
            // Corner for the *next* block in this sweep, read before overwrite.
            let next_corner = north_h[BLOCK - 1];
            compute_block(
                &ctx,
                i0,
                j0,
                &rblock,
                &qblock,
                corner,
                &mut west_h,
                &mut west_e,
                &mut north_h,
                &mut north_f,
                &mut cells,
            );
            tracker.on_block(&cells);
            row_h[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&north_h);
            row_f[i0 as usize..i0 as usize + BLOCK].copy_from_slice(&north_f);
            corner = next_corner;
            if tracker.is_finished() {
                break 'rows;
            }
        }
        if tracker.advance().is_some() {
            break;
        }
    }
    tracker.result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guided::guided_align;

    fn seq(s: &str) -> PackedSeq {
        PackedSeq::from_str_seq(s)
    }

    fn check(r: &str, q: &str, scoring: &Scoring) {
        let (r, q) = (seq(r), seq(q));
        let want = guided_align(&r, &q, scoring);
        let got = block_grid_align(&r, &q, scoring);
        assert!(got.same_alignment(&want), "\nblock: {got:?}\nscalar: {want:?}");
        assert_eq!(got.cells, want.cells, "reference cell counts must agree");
        assert_eq!(got.antidiags, want.antidiags);
    }

    #[test]
    fn matches_scalar_small_square() {
        let s = Scoring::figure1();
        check("AGATAGAT", "AGACTATC", &s);
    }

    #[test]
    fn matches_scalar_non_block_multiple() {
        let s = Scoring::figure1();
        check("AGATAGATA", "AGACTATCAGA", &s);
        check("AGA", "AGACT", &s);
        check("ACGTACGTACGTACGTA", "ACG", &s);
    }

    #[test]
    fn matches_scalar_banded() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 3);
        check("ACGTACGTACGTACGTACGTACGT", "ACGTACGTTCGTACGTACGAACGT", &s);
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 5);
        check("ACGTACGTACGTACGTACGTACGTACGTACGTACGT", "ACGTACGTACGTACG", &s);
    }

    #[test]
    fn matches_scalar_zdrop() {
        let s = Scoring::new(2, 4, 4, 2, 8, 6);
        check(
            "ACGTACGTACGTACGTGGGGGGGGGGGGGGGGGGGGGGGG",
            "ACGTACGTACGTACGTCCCCCCCCCCCCCCCCCCCCCCCC",
            &s,
        );
    }

    #[test]
    fn matches_scalar_band_exhaustion() {
        let s = Scoring::new(2, 4, 4, 2, Scoring::NO_ZDROP, 2);
        check(&"ACGT".repeat(16), "ACGTA", &s);
    }

    #[test]
    fn matches_scalar_long_random_like() {
        // Deterministic pseudo-random-ish strings exercising many blocks.
        let mut r = String::new();
        let mut q = String::new();
        let mut x: u64 = 0x9E3779B97F4A7C15;
        for k in 0..300 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let c = ['A', 'C', 'G', 'T'][(x >> 33) as usize % 4];
            r.push(c);
            if k % 37 != 0 {
                q.push(c);
            }
            if k % 23 == 0 {
                q.push('T');
            }
        }
        let s = Scoring::new(2, 4, 4, 2, 40, 16);
        check(&r, &q, &s);
        let s = Scoring::preset_bwa().with_band(24);
        check(&r, &q, &s);
    }

    #[test]
    fn row_block_range_geometry() {
        let sc = Scoring::new(1, 1, 1, 1, Scoring::NO_ZDROP, 4);
        let ctx = BlockCtx::new(64, 32, &sc);
        // row 0: j in [0,7], band w=4 → i in [0, 11] → blocks 0..=1
        assert_eq!(ctx.row_block_range(0), Some((0, 1)));
        // row 3: j in [24,31] → i in [20, 35] → blocks 2..=4
        assert_eq!(ctx.row_block_range(3), Some((2, 4)));
        // beyond query
        assert_eq!(ctx.row_block_range(4), None);
    }

    #[test]
    fn lane_range_agrees_with_valid() {
        // Brute-force cross-check of the closed-form lane intervals against
        // per-cell validity, over assorted block origins and bands.
        let cases = [
            (64usize, 32usize, 4i32),
            (20, 20, 2),
            (9, 40, 7),
            (40, 9, Scoring::NO_BAND),
            (8, 8, 1),
        ];
        for (n, m, w) in cases {
            let sc = Scoring::new(1, 1, 1, 1, Scoring::NO_ZDROP, w);
            let ctx = BlockCtx::new(n, m, &sc);
            for bi in 0..ctx.ref_blocks() {
                for bj in 0..ctx.query_blocks() {
                    let (i0, j0) = (bi * BLOCK as i64, bj * BLOCK as i64);
                    for d in 0..BLOCK_DIAGS {
                        let mut want = 0u8;
                        for l in 0..BLOCK.min(d + 1) {
                            let k = d - l;
                            if k < BLOCK && ctx.valid(i0 + l as i64, j0 + k as i64) {
                                want |= 1 << l;
                            }
                        }
                        let got = match ctx.lane_range(i0, j0, d) {
                            None => 0u8,
                            Some((lo, hi)) => ((1u16 << (hi + 1)) - (1 << lo)) as u8,
                        };
                        assert_eq!(
                            got, want,
                            "n={n} m={m} w={w} block ({i0},{j0}) diag {d}: \
                             lane_range {got:#010b} vs per-cell {want:#010b}"
                        );
                    }
                    // Interior check agrees with all-valid.
                    let all_valid = (0..BLOCK_DIAGS).all(|d| {
                        let full: u8 = (0..BLOCK.min(d + 1))
                            .filter(|&l| d - l < BLOCK)
                            .fold(0, |acc, l| acc | 1 << l);
                        let got = match ctx.lane_range(i0, j0, d) {
                            None => 0u8,
                            Some((lo, hi)) => ((1u16 << (hi + 1)) - (1 << lo)) as u8,
                        };
                        got == full
                    });
                    assert_eq!(ctx.block_interior(i0, j0), all_valid, "({i0},{j0}) w={w}");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "task admission")]
    fn block_origin_narrowing_is_checked() {
        let mut cells = BlockCells::new();
        cells.set_origin(i32::MAX as i64 + 8, 0);
    }
}
